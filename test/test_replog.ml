(* Unit and property tests for the log substrate, commands and the KV state
   machine. *)

module Log = Replog.Log
module Command = Replog.Command

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_append_get () =
  let l = Log.create () in
  check "empty" true (Log.is_empty l);
  for i = 0 to 99 do
    Log.append l (i * 2)
  done;
  check_int "length" 100 (Log.length l);
  check_int "get" 84 (Log.get l 42);
  check "last" true (Log.last l = Some 198);
  check "out of bounds raises" true
    (try
       ignore (Log.get l 100);
       false
     with Invalid_argument _ -> true)

let test_suffix_sub () =
  let l = Log.of_list [ 0; 1; 2; 3; 4 ] in
  check "suffix" true (Log.suffix l ~from:3 = [ 3; 4 ]);
  check "suffix from 0" true (Log.suffix l ~from:0 = [ 0; 1; 2; 3; 4 ]);
  check "suffix past end" true (Log.suffix l ~from:7 = []);
  check "sub" true (Log.sub l ~pos:1 ~len:2 = [ 1; 2 ]);
  check "sub clamps" true (Log.sub l ~pos:4 ~len:10 = [ 4 ]);
  check "sub empty" true (Log.sub l ~pos:2 ~len:0 = [])

let test_truncate_set_suffix () =
  let l = Log.of_list [ 0; 1; 2; 3; 4 ] in
  Log.truncate l 3;
  check "truncate" true (Log.to_list l = [ 0; 1; 2 ]);
  Log.truncate l 10;
  check "truncate beyond is a no-op" true (Log.to_list l = [ 0; 1; 2 ]);
  Log.set_suffix l ~at:1 [ 9; 8 ];
  check "set_suffix" true (Log.to_list l = [ 0; 9; 8 ]);
  Log.set_suffix l ~at:3 [ 7 ];
  check "set_suffix at end appends" true (Log.to_list l = [ 0; 9; 8; 7 ]);
  check "set_suffix beyond raises" true
    (try
       Log.set_suffix l ~at:9 [];
       false
     with Invalid_argument _ -> true)

let test_trim () =
  let l = Log.of_list [ 0; 1; 2; 3; 4; 5 ] in
  Log.trim l ~upto:3;
  check_int "length is absolute" 6 (Log.length l);
  check_int "first_idx moved" 3 (Log.first_idx l);
  check_int "reads above the trim point work" 4 (Log.get l 4);
  check "reads below the trim point raise" true
    (try
       ignore (Log.get l 2);
       false
     with Invalid_argument _ -> true);
  check "suffix from below clamps to the trim point" true
    (Log.suffix l ~from:0 = [ 3; 4; 5 ]);
  Log.append l 6;
  check_int "appends continue at absolute indices" 7 (Log.length l);
  check "idempotent re-trim" true
    (Log.trim l ~upto:2;
     Log.first_idx l = 3);
  Log.trim l ~upto:7;
  check_int "trim everything" 7 (Log.first_idx l);
  check "trim beyond length raises" true
    (try
       Log.trim l ~upto:9;
       false
     with Invalid_argument _ -> true)

let test_copy_iter_fold () =
  let l = Log.of_list [ 1; 2; 3 ] in
  let c = Log.copy l in
  Log.append l 4;
  check_int "copy is independent" 3 (Log.length c);
  let sum = Log.fold l ~init:0 ~f:( + ) in
  check_int "fold" 10 sum;
  let seen = ref [] in
  Log.iteri_from l ~from:2 (fun i x -> seen := (i, x) :: !seen);
  check "iteri_from" true (List.rev !seen = [ (2, 3); (3, 4) ])

(* set_suffix agrees with the list model: take at, then append. *)
let prop_set_suffix_model =
  QCheck.Test.make ~name:"set_suffix matches the list model" ~count:200
    QCheck.(triple (small_list small_int) small_nat (small_list small_int))
    (fun (init, at, suffix) ->
      let at = if init = [] then 0 else at mod (List.length init + 1) in
      let l = Log.of_list init in
      Log.set_suffix l ~at suffix;
      let model = List.filteri (fun i _ -> i < at) init @ suffix in
      Log.to_list l = model)

let prop_suffix_model =
  QCheck.Test.make ~name:"suffix matches the list model" ~count:200
    QCheck.(pair (small_list small_int) small_nat)
    (fun (init, from) ->
      let l = Log.of_list init in
      Log.suffix l ~from = List.filteri (fun i _ -> i >= from) init)

let test_command_sizes () =
  check_int "noop is the paper's 8 bytes" 8 (Command.size (Command.noop 1));
  check "puts grow with payload" true
    (Command.size (Command.make ~id:1 (Command.Kv_put ("key", "value"))) > 8);
  check_int "blob" 100 (Command.size (Command.make ~id:1 (Command.Blob 100)))

let test_kv_semantics () =
  let kv = Replog.Kv.create () in
  let apply op = Replog.Kv.apply kv (Command.make ~id:0 op) in
  check "get missing" true (apply (Command.Kv_get "a") = Replog.Kv.Value None);
  ignore (apply (Command.Kv_put ("a", "1")));
  check "get hits" true
    (apply (Command.Kv_get "a") = Replog.Kv.Value (Some "1"));
  ignore (apply (Command.Kv_put ("a", "2")));
  check "overwrite" true (Replog.Kv.get kv "a" = Some "2");
  ignore (apply (Command.Kv_del "a"));
  check "delete" true (Replog.Kv.get kv "a" = None);
  check_int "applied count" 5 (Replog.Kv.applied kv)

let test_kv_snapshot_roundtrip () =
  let kv = Replog.Kv.create () in
  let apply op = ignore (Replog.Kv.apply kv (Command.make ~id:0 op)) in
  apply (Command.Kv_put ("alpha", "1"));
  apply (Command.Kv_put ("beta:with:colons", "va:lue"));
  apply (Command.Kv_put ("gamma", ""));
  apply (Command.Kv_del "alpha");
  let restored = Replog.Kv.restore (Replog.Kv.snapshot kv) in
  check "deleted key absent" true (Replog.Kv.get restored "alpha" = None);
  check "colon-laden key survives" true
    (Replog.Kv.get restored "beta:with:colons" = Some "va:lue");
  check "empty value survives" true (Replog.Kv.get restored "gamma" = Some "");
  check_int "applied counter carried over" 4 (Replog.Kv.applied restored)

(* The versioned snapshot envelope: byte-stable golden, round-trip and
   corruption detection. The golden is load-bearing — snapshots cross the
   wire between protocol versions, so the encoding must never drift
   silently. *)
let test_snapshot_envelope () =
  let kv = Replog.Kv.create () in
  let apply op = ignore (Replog.Kv.apply kv (Command.make ~id:0 op)) in
  apply (Command.Kv_put ("a", "1"));
  apply (Command.Kv_put ("b", "two"));
  let bytes = Replog.Snapshot.encode ~last_idx:7 ~client_cmds:5 kv in
  Alcotest.(check string)
    "byte-stable encoding" "opxsnap1;7;5;c2163262;2;1:a1:11:b3:two" bytes;
  let s = Replog.Snapshot.decode_exn bytes in
  check_int "last_idx round-trips" 7 s.Replog.Snapshot.last_idx;
  check_int "client_cmds round-trips" 5 s.Replog.Snapshot.client_cmds;
  let restored = Replog.Snapshot.restore s in
  check "state round-trips" true
    (Replog.Kv.get restored "a" = Some "1"
    && Replog.Kv.get restored "b" = Some "two");
  (* Insertion order must not affect the bytes (key-sorted payload). *)
  let kv2 = Replog.Kv.create () in
  let apply2 op = ignore (Replog.Kv.apply kv2 (Command.make ~id:0 op)) in
  apply2 (Command.Kv_put ("b", "two"));
  apply2 (Command.Kv_put ("a", "1"));
  check "history-independent bytes" true
    (Replog.Snapshot.encode ~last_idx:7 ~client_cmds:5 kv2 = bytes);
  (* Corruption and malformed input are rejected, not misparsed. *)
  let flipped = Bytes.of_string bytes in
  Bytes.set flipped (String.length bytes - 1) 'x';
  check "checksum catches corruption" true
    (Result.is_error (Replog.Snapshot.decode (Bytes.to_string flipped)));
  check "bad magic rejected" true
    (Result.is_error (Replog.Snapshot.decode ("nope" ^ bytes)));
  check "truncated rejected" true
    (Result.is_error (Replog.Snapshot.decode (String.sub bytes 0 12)))

(* Index translation at the compaction boundary: trim at 0, at the decided
   frontier, double-compaction, and the reset_to jump used by snapshot
   installs. *)
let test_trim_translation () =
  let l = Log.of_list [ 10; 11; 12; 13; 14; 15 ] in
  Log.trim l ~upto:0;
  check_int "trim at 0 is a no-op" 0 (Log.first_idx l);
  Log.trim l ~upto:4;
  Log.trim l ~upto:6;
  check_int "double compaction compounds" 6 (Log.first_idx l);
  check_int "absolute length is unchanged" 6 (Log.length l);
  check "suffix at the frontier is empty" true (Log.suffix l ~from:6 = []);
  Log.append l 16;
  check_int "appends continue above the frontier" 16 (Log.get l 6);
  (* A snapshot install jumps the log to an offset it never reached. *)
  let j = Log.create () in
  Log.reset_to j ~offset:9;
  check_int "reset_to sets first_idx" 9 (Log.first_idx j);
  check_int "reset_to sets length" 9 (Log.length j);
  check "reads below the installed offset raise" true
    (try
       ignore (Log.get j 8);
       false
     with Invalid_argument _ -> true);
  Log.append j 99;
  check_int "appends continue at the offset" 99 (Log.get j 9);
  check "sub of the empty retained suffix" true (Log.sub j ~pos:9 ~len:0 = [])

(* Snapshot/restore is lossless for random states. *)
let prop_kv_snapshot_lossless =
  QCheck.Test.make ~name:"kv snapshot/restore is lossless" ~count:100
    QCheck.(small_list (pair (string_of_size (Gen.int_bound 8)) (string_of_size (Gen.int_bound 8))))
    (fun pairs ->
      let kv = Replog.Kv.create () in
      List.iteri
        (fun i (k, v) ->
          ignore (Replog.Kv.apply kv (Command.make ~id:i (Command.Kv_put (k, v)))))
        pairs;
      let restored = Replog.Kv.restore (Replog.Kv.snapshot kv) in
      List.for_all
        (fun (k, _) -> Replog.Kv.get restored k = Replog.Kv.get kv k)
        pairs)

(* Two KV stores applying the same command sequence agree: determinism of
   the state machine. *)
let prop_kv_deterministic =
  let cmd_gen =
    QCheck.Gen.(
      map2
        (fun k which ->
          match which mod 3 with
          | 0 -> Command.Kv_put ("k" ^ string_of_int k, string_of_int which)
          | 1 -> Command.Kv_get ("k" ^ string_of_int k)
          | _ -> Command.Kv_del ("k" ^ string_of_int k))
        (int_bound 5) int)
  in
  QCheck.Test.make ~name:"kv state machine is deterministic" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) cmd_gen))
    (fun ops ->
      let run () =
        let kv = Replog.Kv.create () in
        List.iteri
          (fun i op -> ignore (Replog.Kv.apply kv (Command.make ~id:i op)))
          ops;
        List.map (fun i -> Replog.Kv.get kv ("k" ^ string_of_int i))
          [ 0; 1; 2; 3; 4; 5 ]
      in
      run () = run ())

let () =
  Alcotest.run "replog"
    [
      ( "log",
        [
          Alcotest.test_case "append/get" `Quick test_append_get;
          Alcotest.test_case "suffix/sub" `Quick test_suffix_sub;
          Alcotest.test_case "truncate/set_suffix" `Quick
            test_truncate_set_suffix;
          Alcotest.test_case "trim" `Quick test_trim;
          Alcotest.test_case "copy/iter/fold" `Quick test_copy_iter_fold;
        ] );
      ( "command/kv",
        [
          Alcotest.test_case "command sizes" `Quick test_command_sizes;
          Alcotest.test_case "kv semantics" `Quick test_kv_semantics;
          Alcotest.test_case "kv snapshot roundtrip" `Quick
            test_kv_snapshot_roundtrip;
          Alcotest.test_case "snapshot envelope" `Quick test_snapshot_envelope;
          Alcotest.test_case "trim index translation" `Quick
            test_trim_translation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_set_suffix_model;
          QCheck_alcotest.to_alcotest prop_suffix_model;
          QCheck_alcotest.to_alcotest prop_kv_deterministic;
          QCheck_alcotest.to_alcotest prop_kv_snapshot_lossless;
        ] );
    ]
