(* Binary codec golden test: round-trips two traces through both encodings
   and expect-diffs the summary against test/tracebin_smoke.expected.

   Trace one is a hand-built witness list with exactly one event per
   [Obs.Event.kind] constructor — the [exercise] match below has no
   wildcard, so adding a constructor breaks this file at compile time
   until the witness list (and therefore codec coverage) is extended.
   Trace two is a real chaos-campaign replay: the faulty-raft canary's
   minimal failing schedule re-run with the tracer on, which exercises the
   codec over realistic timestamps, interned strings and event mixes.

   Equality is compared on [Event.to_json] lines: JSONL prints times as
   milliseconds with three decimals and the binary codec stores integer
   microseconds, so both encodings normalise to the same precision and a
   faithful codec reproduces the JSON stream byte for byte. The test also
   pins header metadata / sampling-rate round-trips, the sampler's
   head+rate arithmetic, and streaming-vs-batch analyzer equivalence on
   the campaign trace. *)

module Ev = Obs.Event
module Tb = Obs.Tracebin

(* Compile guard: no wildcard. A new constructor fails this match. *)
let exercise (k : Ev.kind) : unit =
  match k with
  | Ev.Ballot_increment _ -> ()
  | Ev.Leader_elected _ -> ()
  | Ev.Leader_changed _ -> ()
  | Ev.Prepare_round _ -> ()
  | Ev.Promise_sent _ -> ()
  | Ev.Accept_sent _ -> ()
  | Ev.Accepted_idx _ -> ()
  | Ev.Decided _ -> ()
  | Ev.Proposed _ -> ()
  | Ev.Batch_flush _ -> ()
  | Ev.Cap_change _ -> ()
  | Ev.Session_drop _ -> ()
  | Ev.Session_up _ -> ()
  | Ev.Link_cut _ -> ()
  | Ev.Link_heal _ -> ()
  | Ev.Crashed -> ()
  | Ev.Recovered -> ()
  | Ev.Reconfig _ -> ()
  | Ev.Msg_send _ -> ()
  | Ev.Msg_deliver _ -> ()
  | Ev.Msg_drop _ -> ()
  | Ev.Snapshot_taken _ -> ()
  | Ev.Snapshot_installed _ -> ()
  | Ev.Log_trimmed _ -> ()
  | Ev.Chaos_fault _ -> ()
  | Ev.Chaos_invoke _ -> ()
  | Ev.Chaos_response _ -> ()
  | Ev.Chaos_timeout _ -> ()

let b = { Ev.n = 9; prio = 2; pid = 1 }

let one_of_each : Ev.t list =
  let at i node kind = { Ev.time = float_of_int (i * 125) /. 1000.0; node; kind } in
  [
    at 0 0 (Ev.Ballot_increment b);
    at 1 0 (Ev.Leader_elected b);
    at 2 1 (Ev.Leader_changed b);
    at 3 0 (Ev.Prepare_round { b; log_idx = 17; decided_idx = 12 });
    at 4 2 (Ev.Promise_sent { b; log_idx = 17; decided_idx = 12 });
    at 5 0 (Ev.Accept_sent { b; start_idx = 13; count = 4 });
    at 6 2 (Ev.Accepted_idx { b; log_idx = 17 });
    at 7 0 (Ev.Decided { b; decided_idx = 17 });
    at 8 0 (Ev.Proposed { log_idx = 18; cmd_id = 4711 });
    at 9 0
      (Ev.Batch_flush { entries = 8; followers = 2; cap = 64; trigger = "size" });
    at 10 0 (Ev.Cap_change { cap_from = 64; cap_to = 32 });
    at 11 1 (Ev.Session_drop { peer = 2; session = 3 });
    at 12 1 (Ev.Session_up { peer = 2; session = 4 });
    at 13 (-1) (Ev.Link_cut { a = 0; b = 2 });
    at 14 (-1) (Ev.Link_heal { a = 0; b = 2 });
    at 15 2 Ev.Crashed;
    at 16 2 Ev.Recovered;
    at 17 0 (Ev.Reconfig { config_id = 2; milestone = "prepared" });
    at 18 0 (Ev.Msg_send { dst = 1; size = 120; send_id = 77; lc = 40 });
    at 19 1 (Ev.Msg_deliver { src = 0; size = 120; send_id = 77; lc = 41 });
    at 20 0
      (Ev.Msg_drop
         { src = 0; dst = 2; reason = "link-down"; session = 3; send_id = 78 });
    at 21 1 (Ev.Snapshot_taken { idx = 12; bytes = 640 });
    at 22 2 (Ev.Snapshot_installed { idx = 12; bytes = 640 });
    at 23 1 (Ev.Log_trimmed { upto = 12; entries = 12 });
    at 24 (-1) (Ev.Chaos_fault { step = 5; fault = "link_cut(0,2)" });
    at 25 (-1) (Ev.Chaos_invoke { client = 1; op_id = 9; op = "put k v" });
    at 26 (-1) (Ev.Chaos_response { client = 1; op_id = 9; result = "ok" });
    at 27 (-1) (Ev.Chaos_timeout { client = 2; op_id = 10 });
  ]

let jsonl_of events =
  String.concat "" (List.map (fun e -> Ev.to_json e ^ "\n") events)

let bin_of ?meta events =
  let buf = Buffer.create 4096 in
  let w = Tb.writer ?meta (Buffer.add_string buf) in
  List.iter (Tb.write w) events;
  Tb.flush w;
  Buffer.contents buf

let decode_all s =
  let src = Tb.of_string s in
  let acc = ref [] in
  (match Tb.iter src (fun e -> acc := e :: !acc) with
  | Ok () -> ()
  | Error e -> failwith e);
  (List.rev !acc, src)

(* Both encodings normalise time to integer microseconds in their JSON
   rendering, so a faithful round trip reproduces the JSONL stream. *)
let round_trips label events =
  let reference = jsonl_of events in
  let via_bin, _ = decode_all (bin_of events) in
  let via_jsonl, _ = decode_all (jsonl_of events) in
  Printf.printf "%s: %d events, bin round-trip exact: %b, jsonl round-trip exact: %b\n"
    label (List.length events)
    (String.equal reference (jsonl_of via_bin))
    (String.equal reference (jsonl_of via_jsonl))

let kinds_covered events =
  let seen = Array.make Ev.num_kinds false in
  List.iter (fun (e : Ev.t) -> seen.(Ev.kind_tag e.kind) <- true) events;
  Array.fold_left (fun a c -> if c then a + 1 else a) 0 seen

let () =
  print_string "== tracebin smoke ==\n";
  List.iter (fun (e : Ev.t) -> exercise e.Ev.kind) one_of_each;
  Printf.printf "constructors: %d, witness list covers: %d\n" Ev.num_kinds
    (kinds_covered one_of_each);
  round_trips "one-of-each" one_of_each;

  (* A real trace: replay the faulty-raft canary's first minimal failing
     schedule (fixed seeds, so the trace is identical on every machine). *)
  let runner =
    match Chaos.Campaign.find_runner "faulty-raft" with
    | Some r -> r
    | None -> failwith "faulty-raft runner missing"
  in
  let cfg = Chaos.Campaign.default_config in
  let failure =
    let rec first = function
      | [] -> failwith "no failing seed (canary not caught)"
      | seed :: rest -> (
          match
            (runner.Chaos.Campaign.cr_run cfg ~seed ~episodes:2)
              .Chaos.Campaign.s_failures
          with
          | f :: _ -> f
          | [] -> first rest)
    in
    first [ 1; 2; 3; 42; 46 ]
  in
  let _, recording =
    Obs.Trace.with_recording (fun () ->
        runner.Chaos.Campaign.cr_replay cfg ~seed:failure.Chaos.Campaign.f_seed
          ~schedule:failure.Chaos.Campaign.f_minimal)
  in
  let campaign = recording.Obs.Trace.events in
  Printf.printf "campaign trace (seed %d): kinds covered: %d/%d\n"
    failure.Chaos.Campaign.f_seed (kinds_covered campaign) Ev.num_kinds;
  round_trips "campaign" campaign;
  Printf.printf "union covers all constructors: %b\n"
    (kinds_covered (one_of_each @ campaign) = Ev.num_kinds);

  (* Header: run metadata and sampling rates survive encode/decode. *)
  let sampler = Obs.Sampling.create ~head:2 ~rate:4 () in
  let meta =
    [ ("nodes", "3"); ("seed", "9") ] @ Obs.Sampling.to_meta sampler
  in
  let _, src = decode_all (bin_of ~meta one_of_each) in
  Printf.printf "header meta round-trip: %b, rates parsed back: %b\n"
    (List.for_all
       (fun (k, v) ->
         match List.assoc_opt k (Tb.meta src) with
         | Some v' -> String.equal v v'
         | None -> false)
       meta)
    (List.for_all
       (fun (_, r) -> r = 4)
       (Obs.Sampling.rates_of_meta (Tb.meta src))
    && Obs.Sampling.rates_of_meta (Tb.meta src) <> []);

  (* Sampler arithmetic: head 2 then 1-in-4 of a 50-proposal burst. *)
  let s = Obs.Sampling.create ~head:2 ~rate:4 () in
  let kept = ref 0 in
  for i = 1 to 50 do
    if Obs.Sampling.keep s (Ev.Proposed { log_idx = i; cmd_id = i }) then
      incr kept
  done;
  Printf.printf "sampling head=2 rate=4: kept %d of 50 proposals\n" !kept;

  (* Streaming fold (default bounded window / exact-percentile / causal
     caps) and the batch analysis agree on an un-sampled trace. *)
  let batch = Obs.Analyze.run campaign in
  let n =
    1 + List.fold_left (fun a (e : Ev.t) -> max a e.Ev.node) 0 campaign
  in
  let stream = Obs.Analyze.Stream.create ~n_hint:n () in
  List.iter (Obs.Analyze.Stream.observe stream) campaign;
  let streamed = Obs.Analyze.Stream.finish stream in
  Printf.printf "streaming == batch (text): %b\n"
    (String.equal (Obs.Analyze.to_string batch)
       (Obs.Analyze.to_string streamed))
