(* The chaos harness's own tests: the linearizability checker against
   hand-built histories (both legal and illegal), determinism of schedule
   generation and of whole traced episodes, campaign reproducibility, and
   the acceptance check that a deliberately injected stale-read bug is
   caught and shrunk to a minimal fault schedule. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Ck = Chaos.Checker

let op ?(client = 0) ?(key = "k") ~id ~kind ~invoke ?return ?result () =
  {
    Ck.o_id = id;
    o_client = client;
    o_key = key;
    o_kind = kind;
    o_invoke = invoke;
    o_return = return;
    o_result = result;
  }

(* ---------------- checker ---------------- *)

let test_sequential_ok () =
  let ops =
    [
      op ~id:0 ~kind:(Ck.Put "a") ~invoke:0.0 ~return:1.0 ();
      op ~id:1 ~kind:Ck.Get ~invoke:2.0 ~return:3.0 ~result:(Some "a") ();
      op ~id:2 ~kind:Ck.Del ~invoke:4.0 ~return:5.0 ();
      op ~id:3 ~kind:Ck.Get ~invoke:6.0 ~return:7.0 ~result:None ();
    ]
  in
  check "sequential put/get/del/get" true (Ck.linearizable ops)

let test_stale_read_detected () =
  let ops =
    [
      op ~id:0 ~kind:(Ck.Put "a") ~invoke:0.0 ~return:1.0 ();
      op ~id:1 ~kind:(Ck.Put "b") ~invoke:2.0 ~return:3.0 ();
      (* The read starts after put b returned, yet observes the old value. *)
      op ~id:2 ~kind:Ck.Get ~invoke:4.0 ~return:5.0 ~result:(Some "a") ();
    ]
  in
  check "stale read is a violation" false (Ck.linearizable ops)

let test_concurrent_read_both_ways () =
  let slow_put = op ~id:0 ~kind:(Ck.Put "b") ~invoke:0.0 ~return:10.0 () in
  let saw_new =
    [ slow_put; op ~id:1 ~kind:Ck.Get ~invoke:2.0 ~return:3.0 ~result:(Some "b") () ]
  in
  let saw_old =
    [ slow_put; op ~id:1 ~kind:Ck.Get ~invoke:2.0 ~return:3.0 ~result:None () ]
  in
  check "read overlapping a put may see the new value" true
    (Ck.linearizable saw_new);
  check "read overlapping a put may see the old value" true
    (Ck.linearizable saw_old)

let test_pending_write_semantics () =
  let pending_put = op ~id:0 ~kind:(Ck.Put "b") ~invoke:0.0 () in
  (* A timed-out write may take effect at any later point... *)
  check "pending write may materialise" true
    (Ck.linearizable
       [
         pending_put;
         op ~id:1 ~kind:Ck.Get ~invoke:5.0 ~return:6.0 ~result:None ();
         op ~id:2 ~kind:Ck.Get ~invoke:7.0 ~return:8.0 ~result:(Some "b") ();
       ]);
  (* ...or never. *)
  check "pending write may never materialise" true
    (Ck.linearizable
       [
         pending_put;
         op ~id:1 ~kind:Ck.Get ~invoke:5.0 ~return:6.0 ~result:None ();
       ]);
  (* But it cannot un-happen: once observed, later reads must still see it
     (nothing else writes the key here). *)
  check "write cannot be observed and then undone" false
    (Ck.linearizable
       [
         pending_put;
         op ~id:1 ~kind:Ck.Get ~invoke:5.0 ~return:6.0 ~result:(Some "b") ();
         op ~id:2 ~kind:Ck.Get ~invoke:7.0 ~return:8.0 ~result:None ();
       ])

let test_per_key_partitioning_and_minimality () =
  let ops =
    [
      (* Key "good": a perfectly fine pair. *)
      op ~key:"good" ~id:0 ~kind:(Ck.Put "x") ~invoke:0.0 ~return:1.0 ();
      op ~key:"good" ~id:1 ~kind:Ck.Get ~invoke:2.0 ~return:3.0
        ~result:(Some "x") ();
      (* Key "bad": reads a value nobody ever wrote. *)
      op ~key:"bad" ~id:2 ~kind:(Ck.Put "y") ~invoke:0.0 ~return:1.0 ();
      op ~key:"bad" ~id:3 ~kind:Ck.Get ~invoke:2.0 ~return:3.0
        ~result:(Some "zzz") ();
    ]
  in
  let r = Ck.check_ops ops in
  check_int "two keys checked" 2 r.Ck.r_keys;
  check "not truncated" false r.Ck.r_truncated;
  match r.Ck.r_violation with
  | None -> Alcotest.fail "expected a violation on key bad"
  | Some v ->
      Alcotest.(check string) "violation on the right key" "bad" v.Ck.v_key;
      (* 1-minimal: the bogus read alone already violates (the put can be
         dropped: the read still returns a never-written value). *)
      check_int "minimal subhistory is a single op" 1 (List.length v.Ck.v_ops)

let test_truncation_is_not_violation () =
  (* Many concurrent pending writes blow up the search; with a tiny budget
     the checker must report truncation, not a verdict. *)
  let ops =
    List.init 12 (fun i ->
        op ~id:i ~kind:(Ck.Put (string_of_int i)) ~invoke:0.0 ())
    @ [ op ~id:99 ~kind:Ck.Get ~invoke:1.0 ~return:2.0 ~result:(Some "11") () ]
  in
  let r = Ck.check_ops ~max_states:3 ops in
  check "truncated" true r.Ck.r_truncated;
  check "no violation claimed" true (r.Ck.r_violation = None)

(* ---------------- determinism ---------------- *)

let test_schedule_determinism () =
  let mk () =
    Chaos.Nemesis.random_schedule
      ~rng:(Random.State.make [| 7; 42 |])
      ~n:5 ~length:32
  in
  check "same seed, same schedule" true (mk () = mk ());
  let other =
    Chaos.Nemesis.random_schedule
      ~rng:(Random.State.make [| 8; 42 |])
      ~n:5 ~length:32
  in
  check "different seed, different schedule" true (mk () <> other)

module Omni_campaign = Chaos.Campaign.Make (Rsm.Omni_adapter)

(* Satellite regression: simulated-network event ordering is deterministic.
   Two traced runs of the same seeded episode must produce the exact same
   obs event sequence (kinds, nodes and timestamps). *)
let test_traced_episode_determinism () =
  let cfg = { Chaos.Campaign.default_config with steps = 8 } in
  let schedule = Omni_campaign.schedule_of_seed cfg ~seed:11 in
  let record () =
    let _, recording =
      Obs.Trace.with_recording (fun () ->
          Omni_campaign.run_schedule cfg ~seed:11 ~schedule)
    in
    List.map Obs.Event.to_json recording.Obs.Trace.events
  in
  let a = record () and b = record () in
  check_int "same number of events" (List.length a) (List.length b);
  check "nontrivial trace" true (List.length a > 100);
  List.iter2 (Alcotest.(check string) "identical event sequence") a b

let test_campaign_reproducible () =
  let cfg = { Chaos.Campaign.default_config with steps = 8 } in
  let show () =
    Format.asprintf "%a" Chaos.Campaign.pp_summary
      (Omni_campaign.run cfg ~seed:42 ~episodes:5)
  in
  Alcotest.(check string) "two runs, identical summary" (show ()) (show ())

(* Decided-prefix monotonicity must hold across snapshot installs: a node
   repaired with a snapshot jumps its decided index forward, never back.
   Record a compaction-heavy episode (crash + recover forces the install
   path) and run every trace invariant over it. *)
let test_invariants_across_install () =
  let cfg =
    {
      Chaos.Campaign.default_config with
      steps = 8;
      compaction = Omnipaxos.Compaction.make ~retain:4 16;
    }
  in
  let schedule =
    Chaos.Nemesis.
      [ Crash 2; Heal_all; Heal_all; Heal_all; Heal_all; Recover 2 ]
  in
  let _, recording =
    Obs.Trace.with_recording (fun () ->
        Omni_campaign.run_schedule cfg ~seed:13 ~schedule)
  in
  let events = recording.Obs.Trace.events in
  let installs =
    List.length
      (List.filter
         (fun (e : Obs.Event.t) ->
           match e.Obs.Event.kind with
           | Obs.Event.Snapshot_installed _ -> true
           | _ [@lint.allow "D4"] -> false)
         events)
  in
  check "the episode exercised a snapshot install" true (installs > 0);
  List.iter
    (fun (name, r) ->
      check ("invariant " ^ name) true
        (match r with
        | Ok () -> true
        | Error v ->
            Format.eprintf "%s: %a@." name Obs.Invariant.pp_violation v;
            false))
    (Obs.Invariant.check_all events)

(* Regression: a retransmitted (stale) snapshot install must not roll the
   application state machine back. Both seeds below once produced a
   single-op stale-read violation: a leader that answered two promises
   from the same session-reset shipped the same snapshot twice, and the
   second install landed after entries above its boundary had already
   been decided (VR / Sequence Paxos), or a leader whose next-index was
   rewound by a session reset re-shipped a snapshot whose tail the
   follower had committed in the meantime (Raft PV+CQ). *)
let test_stale_install_not_reapplied () =
  List.iter
    (fun (name, seed, steps) ->
      match Chaos.Campaign.find_runner name with
      | None -> Alcotest.failf "runner %s not registered" name
      | Some r ->
          let cfg =
            {
              Chaos.Campaign.default_config with
              steps;
              compaction = Omnipaxos.Compaction.make ~retain:4 16;
            }
          in
          let s = r.cr_run cfg ~seed ~episodes:1 in
          check (name ^ ": no stale-read violation") true
            (s.Chaos.Campaign.s_failures = []))
    [ ("vr", 3000, 24); ("raft-pvcq", 2056, 12) ]

(* ---------------- campaigns on the real protocols ---------------- *)

let test_correct_protocols_clean () =
  List.iter
    (fun (r : Chaos.Campaign.runner) ->
      if r.cr_name <> "faulty-raft" then begin
        let s =
          r.cr_run Chaos.Campaign.default_config ~seed:7 ~episodes:5
        in
        check (r.cr_name ^ ": no violations") true (s.Chaos.Campaign.s_failures = []);
        check
          (r.cr_name ^ ": clients made progress")
          true
          (s.Chaos.Campaign.s_completed > 0)
      end)
    Chaos.Campaign.runners

(* ---------------- the injected bug ---------------- *)

let test_faulty_adapter_caught_and_shrunk () =
  let runner =
    match Chaos.Campaign.find_runner "faulty-raft" with
    | Some r -> r
    | None -> Alcotest.fail "faulty-raft runner missing"
  in
  let cfg = Chaos.Campaign.default_config in
  let s = runner.cr_run cfg ~seed:42 ~episodes:10 in
  match s.Chaos.Campaign.s_failures with
  | [] -> Alcotest.fail "stale-read bug not caught in 10 episodes"
  | f :: _ ->
      let open Chaos.Campaign in
      check "minimal schedule is non-empty" true (f.f_minimal <> []);
      check "minimal no longer than the original" true
        (List.length f.f_minimal <= List.length f.f_schedule);
      (* Replaying the minimal schedule still fails... *)
      let replay schedule =
        (runner.cr_replay cfg ~seed:f.f_seed ~schedule).ep_check
          .Ck.r_violation
      in
      check "minimal schedule reproduces the violation" true
        (replay f.f_minimal <> None);
      (* ...and it is 1-minimal: dropping any single opcode makes it pass. *)
      List.iteri
        (fun i _ ->
          let without =
            List.filteri (fun j _ -> j <> i) f.f_minimal
          in
          check
            (Printf.sprintf "dropping opcode %d makes it pass" i)
            true
            (replay without = None))
        f.f_minimal

let () =
  Alcotest.run "chaos"
    [
      ( "checker",
        [
          Alcotest.test_case "sequential history" `Quick test_sequential_ok;
          Alcotest.test_case "stale read detected" `Quick
            test_stale_read_detected;
          Alcotest.test_case "concurrent read, both outcomes" `Quick
            test_concurrent_read_both_ways;
          Alcotest.test_case "pending write semantics" `Quick
            test_pending_write_semantics;
          Alcotest.test_case "per-key partitioning and 1-minimality" `Quick
            test_per_key_partitioning_and_minimality;
          Alcotest.test_case "truncation is not a violation" `Quick
            test_truncation_is_not_violation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "schedules from seeds" `Quick
            test_schedule_determinism;
          Alcotest.test_case "traced episode event sequence" `Quick
            test_traced_episode_determinism;
          Alcotest.test_case "campaign summary reproducible" `Quick
            test_campaign_reproducible;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "invariants hold across snapshot install" `Quick
            test_invariants_across_install;
          Alcotest.test_case "stale snapshot installs are not re-applied"
            `Quick test_stale_install_not_reapplied;
          Alcotest.test_case "correct protocols stay clean" `Quick
            test_correct_protocols_clean;
          Alcotest.test_case "injected stale-read bug caught and shrunk"
            `Quick test_faulty_adapter_caught_and_shrunk;
        ] );
    ]
