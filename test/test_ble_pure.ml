(* Unit tests driving the bare pure BLE core (Omnipaxos.Ble_core) — no
   simnet, no callbacks, no mutation inside the protocol: the harness here
   owns all state and routes the core's Send outputs by hand. Exercises
   value semantics (a step never mutates its input state), output ordering,
   the reply-set invariants, and the same election/takeover behaviours
   test_ble.ml checks through the adapter. *)

module C = Omnipaxos.Ble_core
module Ballot = Omnipaxos.Ballot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A functional mini-cluster: configs are fixed, states live in an array
   that only the test harness writes, decisions (Elected / Ballot_bumped)
   accumulate in [events] newest-first. *)
type harness = {
  cfgs : C.config array;
  states : C.state array;
  link : bool array array;
  events : (int * C.output) list ref;
}

let make ?(qc_signal = true) ?(connectivity_priority = false) ?priority_of n =
  let cfgs =
    Array.init n (fun id ->
        let peers = List.filter (fun j -> j <> id) (List.init n Fun.id) in
        C.make_config ~id ~peers ~qc_signal ~connectivity_priority ())
  in
  let states =
    Array.init n (fun id ->
        let priority = match priority_of with Some f -> f id | None -> 0 in
        C.init ~priority ~ballot_n:1 cfgs.(id))
  in
  { cfgs; states; link = Array.make_matrix n n true; events = ref [] }

(* Apply one node's outputs: record decisions, turn sends into queued
   (src, dst, msg) deliveries. *)
let route h node outs queue =
  List.fold_left
    (fun queue (o : C.output) ->
      match o with
      | C.Send { dst; msg } -> queue @ [ (node, dst, msg) ]
      | C.Elected _ | C.Ballot_bumped _ ->
          h.events := (node, o) :: !(h.events);
          queue)
    queue outs

let rec deliver h = function
  | [] -> ()
  | (src, dst, msg) :: rest ->
      if h.link.(src).(dst) then begin
        let s', outs = C.step h.cfgs.(dst) h.states.(dst) (C.Deliver { src; msg }) in
        h.states.(dst) <- s';
        deliver h (route h dst outs rest)
      end
      else deliver h rest

let round h =
  let queue =
    Array.to_list
      (Array.mapi
         (fun id () ->
           let s', outs = C.step h.cfgs.(id) h.states.(id) C.Tick in
           h.states.(id) <- s';
           route h id outs [])
         (Array.make (Array.length h.states) ()))
    |> List.concat
  in
  deliver h queue

let rounds h k =
  for _ = 1 to k do
    round h
  done

let leader_pid h id =
  match h.states.(id).C.leader with
  | Some b -> b.Ballot.pid
  | None -> -1

let cut h a b =
  h.link.(a).(b) <- false;
  h.link.(b).(a) <- false

let isolate h a =
  Array.iteri (fun j _ -> if j <> a then cut h a j) h.link

(* ------------------------------------------------------------------ *)

let test_step_is_a_value () =
  let h = make 3 in
  let s0 = h.states.(0) in
  let r1 = C.step h.cfgs.(0) s0 C.Tick in
  let r2 = C.step h.cfgs.(0) s0 C.Tick in
  check "same input, same output" true (r1 = r2);
  check "input state untouched by stepping" true
    (s0.C.round = 0 && s0.C.replies = [] && Option.is_none s0.C.leader);
  let reply = C.Hb_reply { round = 0; ballot = Ballot.initial ~pid:1 (); qc = false } in
  let d1 = C.step h.cfgs.(0) s0 (C.Deliver { src = 1; msg = reply }) in
  let d2 = C.step h.cfgs.(0) s0 (C.Deliver { src = 1; msg = reply }) in
  check "deliver is a value too" true (d1 = d2);
  check "still no mutation" true (s0.C.replies = [])

let test_tick_outputs () =
  let h = make 3 in
  let s1, outs = C.step h.cfgs.(0) h.states.(0) C.Tick in
  check_int "round advanced" 1 s1.C.round;
  check "first tick only broadcasts requests" true
    (outs
    = [
        C.Send { dst = 1; msg = C.Hb_request { round = 1 } };
        C.Send { dst = 2; msg = C.Hb_request { round = 1 } };
      ])

let test_request_reply_echo () =
  let h = make 3 in
  let s = h.states.(0) in
  let _, outs =
    C.step h.cfgs.(0) s (C.Deliver { src = 2; msg = C.Hb_request { round = 7 } })
  in
  check "request echoed to its sender with our ballot and qc" true
    (outs
    = [
        C.Send
          { dst = 2; msg = C.Hb_reply { round = 7; ballot = s.C.ballot; qc = false } };
      ])

let test_reply_set_sorted_and_deduped () =
  let h = make 5 in
  let s = h.states.(0) in
  let reply src n =
    C.Deliver
      {
        src;
        msg = C.Hb_reply { round = 0; ballot = { Ballot.n; priority = 0; pid = src }; qc = true };
      }
  in
  let s = fst (C.step h.cfgs.(0) s (reply 3 1)) in
  let s = fst (C.step h.cfgs.(0) s (reply 1 1)) in
  let s = fst (C.step h.cfgs.(0) s (reply 4 1)) in
  let s = fst (C.step h.cfgs.(0) s (reply 1 9)) in
  check "sorted by source, one entry per source" true
    (List.map fst s.C.replies = [ 1; 3; 4 ]);
  check "latest reply from a source wins" true
    (match List.assoc 1 s.C.replies with b, _ -> b.Ballot.n = 9);
  let s' = fst (C.step h.cfgs.(0) s (reply 2 1)) in
  check "stale-round replies are ignored" true
    (let stale =
       C.Deliver
         { src = 2; msg = C.Hb_reply { round = 5; ballot = Ballot.initial ~pid:2 (); qc = true } }
     in
     (fst (C.step h.cfgs.(0) s stale)).C.replies = s.C.replies
     && List.map fst s'.C.replies = [ 1; 2; 3; 4 ])

let test_initial_election () =
  let h = make 3 in
  rounds h 3;
  check_int "everyone elects the highest ballot (pid 2)" 2 (leader_pid h 0);
  check_int "node 1 agrees" 2 (leader_pid h 1);
  check_int "node 2 agrees" 2 (leader_pid h 2);
  check "every node is quorum-connected" true
    (Array.for_all (fun s -> s.C.qc) h.states);
  let firsts =
    List.filter_map
      (fun (_, o) ->
        match o with C.Elected { first; _ } -> Some first | C.Send _ | C.Ballot_bumped _ -> None)
      !(h.events)
  in
  check "three initial elections, all flagged first" true
    (List.length firsts = 3 && List.for_all Fun.id firsts)

let test_takeover_after_leader_death () =
  let h = make 3 in
  rounds h 3;
  h.events := [];
  isolate h 2;
  rounds h 4;
  check_int "survivor 0 follows the new leader" 1 (leader_pid h 0);
  check_int "survivor 1 leads" 1 (leader_pid h 1);
  let bumps =
    List.filter_map
      (fun (_, o) ->
        match o with C.Ballot_bumped b -> Some b | C.Send _ | C.Elected _ -> None)
      !(h.events)
  in
  check "takeover bumps ballots above the dead leader's" true
    (match bumps with [] -> false | _ :: _ -> List.for_all (fun b -> b.Ballot.n > 1) bumps)

let test_qc_signal_ablation () =
  (* Hand a node two non-QC replies at checkLeader time. With the QC signal
     only the node itself is a candidate, so it elects itself; with the
     ablation every reply is a candidate and the highest ballot (pid 2)
     wins. *)
  let run ~qc_signal =
    let h = make ~qc_signal 3 in
    let s = { (h.states.(0)) with C.round = 2 } in
    let reply src =
      C.Deliver
        {
          src;
          msg = C.Hb_reply { round = 2; ballot = Ballot.initial ~pid:src (); qc = false };
        }
    in
    let s = fst (C.step h.cfgs.(0) s (reply 1)) in
    let s = fst (C.step h.cfgs.(0) s (reply 2)) in
    let s, _ = C.step h.cfgs.(0) s C.Tick in
    match s.C.leader with Some b -> b.Ballot.pid | None -> -1
  in
  check_int "with QC signal: only self is a candidate" 0 (run ~qc_signal:true);
  check_int "ablated: every reply is a candidate" 2 (run ~qc_signal:false)

let test_connectivity_priority_stamp () =
  let h = make ~connectivity_priority:true 3 in
  let dead_leader = { Ballot.n = 5; priority = 0; pid = 9 } in
  let s = { (h.states.(0)) with C.round = 2; C.leader = Some dead_leader } in
  let s =
    fst
      (C.step h.cfgs.(0) s
         (C.Deliver
            {
              src = 1;
              msg = C.Hb_reply { round = 2; ballot = Ballot.initial ~pid:1 (); qc = true };
            }))
  in
  let _, outs = C.step h.cfgs.(0) s C.Tick in
  let bump =
    List.find_map
      (fun (o : C.output) ->
        match o with C.Ballot_bumped b -> Some b | C.Send _ | C.Elected _ -> None)
      outs
  in
  match bump with
  | None -> Alcotest.fail "expected a takeover bump"
  | Some b ->
      check "bumped above the dead leader" true (b.Ballot.n > dead_leader.Ballot.n);
      check_int "priority stamped with connectivity (self + 1 peer)" 2
        b.Ballot.priority

let test_msg_size () =
  check_int "request size" 12 (C.msg_size (C.Hb_request { round = 1 }));
  check_int "reply size" 29
    (C.msg_size (C.Hb_reply { round = 1; ballot = Ballot.initial ~pid:0 (); qc = true }))

let () =
  Alcotest.run "ble_core"
    [
      ( "pure core",
        [
          Alcotest.test_case "step is a value" `Quick test_step_is_a_value;
          Alcotest.test_case "tick outputs" `Quick test_tick_outputs;
          Alcotest.test_case "request/reply echo" `Quick test_request_reply_echo;
          Alcotest.test_case "reply set sorted+deduped" `Quick
            test_reply_set_sorted_and_deduped;
          Alcotest.test_case "initial election" `Quick test_initial_election;
          Alcotest.test_case "takeover after leader death" `Quick
            test_takeover_after_leader_death;
          Alcotest.test_case "qc-signal ablation" `Quick test_qc_signal_ablation;
          Alcotest.test_case "connectivity-priority stamp" `Quick
            test_connectivity_priority_stamp;
          Alcotest.test_case "msg sizes" `Quick test_msg_size;
        ] );
    ]
