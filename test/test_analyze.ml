(* Analyzer golden test: record one chained-scenario Omni-Paxos run (fixed
   seed, so the simulation — and therefore the trace — is bit-identical on
   every machine), analyze it, and expect-diff the rendered report against
   test/analyze_smoke.expected.

   This pins the whole analysis pipeline end to end: event schema, causal
   pairing, span assembly, stall windows, health detectors and the report
   renderers. The final line double-renders the report (text and JSON) and
   asserts byte equality, so the determinism contract of Obs.Analyze is
   exercised on every [dune runtest]. *)

module E = Rsm.Experiments

let () =
  let cfg =
    {
      Rsm.Cluster.default_config with
      n = 3;
      seed = 7;
      election_timeout_ms = 50.0;
    }
  in
  let _, recording =
    Obs.Trace.with_recording (fun () ->
        E.omni_runner.E.pr_partition cfg ~kind:E.Chained ~partition_ms:800.0
          ~cp:10)
  in
  let analyze () =
    Obs.Analyze.run ~ring_dropped:recording.Obs.Trace.dropped
      recording.Obs.Trace.events
  in
  let report = analyze () in
  print_string (Obs.Analyze.to_string report);
  let again = analyze () in
  Printf.printf "deterministic: %b\n"
    (String.equal (Obs.Analyze.to_string report) (Obs.Analyze.to_string again)
    && String.equal
         (Bench_report.Json.to_string (Obs.Analyze.to_json report))
         (Bench_report.Json.to_string (Obs.Analyze.to_json again)))
