(* D3 corpus: wall-clock and ambient entropy. *)

let now () = Sys.time ()
let seed () = Random.self_init ()
let roll () = Random.int 6

(* Seeded generators are deterministic and stay clean. *)
let clean_roll st = Random.State.int st 6
