(* E1 corpus: [@pure]-marked (or manifest-listed) functions with inferred
   write/io effects. [manifest_widen] has no attribute — corpus.facts lists
   it under pure_core. *)

type counter = { mutable count : int }

let[@pure] bump (c : counter) = c.count <- c.count + 1
let[@pure] log_step n = print_string (string_of_int n)
let manifest_widen (tbl : (int, int) Hashtbl.t) = Hashtbl.replace tbl 0 0

(* Reads-only observation is not an E1 violation; neither is an unmarked
   writer. *)
let[@pure] total (c : counter) = c.count
let untracked_bump (c : counter) = c.count <- 0
