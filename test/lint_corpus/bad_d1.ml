(* D1 corpus: polymorphic comparison at a non-primitive type. *)

type ballot = { n : int; pid : int }

let newer (a : ballot) (b : ballot) = a > b
let same (a : ballot) (b : ballot) = a = b
let best (a : ballot) (b : ballot) = max a b

(* Primitive instantiations stay clean. *)
let clean_int (a : int) (b : int) = a = b && Int.compare a b < 0
let clean_string (a : string) (b : string) = a < b
