(* E3 corpus: mutable toplevel state in a protocol library module
   (corpus.facts puts this file in a protocol_dir). *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8
let counter = ref 0
let scratch = Buffer.create 64

type cell = { mutable v : int }

let global_cell = { v = 0 }

(* Clean: immutable toplevel value, and functions returning mutable state. *)
let limit = 42
let lookup k = Hashtbl.find_opt table k
let make_cell () = { v = 1 }

(* Sanctioned shims: the binding-level allow and the
   allow_mutable_toplevel manifest entry in corpus.facts. *)
let[@lint.allow "E3"] quiet_table : (int, int) Hashtbl.t = Hashtbl.create 8
let sanctioned_cache : (int, int) Hashtbl.t = Hashtbl.create 8
