(* E2 corpus: protocol handle/tick bodies performing sends. corpus.facts
   puts this file in a protocol_dir, so [handle] and [tick] are handler
   scope; [helper] is not a handler name and stays clean. *)

type msg = Ping of int | Pong of int
type t = { mutable last : int; send : dst:int -> msg -> unit }

let emit_now t m = t.send ~dst:0 m

let handle t ~src msg =
  match msg with
  | Ping n -> t.send ~dst:src (Pong n)
  | Pong n -> t.last <- n

let tick t outs =
  t.send ~dst:1 (Ping 0);
  emit_now t (Ping 1);
  (* Applying a declared argument is the sanctioned output-accumulator
     shape: exempt. *)
  outs (Ping 2)

let helper t = t.send ~dst:2 (Ping 3)

(* Suppressed: the expression-level allow absorbs the emission. *)
let handle_leader t =
  (t.send ~dst:3 (Ping 4)) [@lint.allow "E2"]
