(* E4 corpus, exercised by the separate --rules E4 run against e4.summary:
   [step] is recorded there as pure but now writes (widened), the recorded
   [gone] no longer exists (stale), and [fresh] is new in a ratcheted
   module. *)

type cell = { mutable v : int }

let step (c : cell) = c.v <- c.v + 1
let fresh x = x + 1
