(* Clean pure-core fixture: listed under pure_core in corpus.facts and
   [@pure]-annotated, with every definition inferring pure. *)

type state = { n : int; history : int list }

let[@pure] step s = { n = s.n + 1; history = s.n :: s.history }
let[@pure] total s = List.fold_left ( + ) s.n s.history
let[@pure] merge a b = if a.n >= b.n then a else b
