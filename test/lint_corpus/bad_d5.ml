(* D5 corpus: ignoring a value that carries protocol state. *)

type state = { mutable round : int }

let bump s =
  s.round <- s.round + 1;
  s

let run s = ignore (bump s)

(* Ignoring a primitive stays clean. *)
let clean s = ignore (s.round + 1)
