(* D4 corpus: catch-all arms over a protocol message variant. *)

type msg = Prepare of int | Promise of int | Accept of int | Decide of int

let is_prepare = function Prepare _ -> true | _ -> false

let tag m = match m with Prepare _ -> 0 | Promise _ -> 1 | _ -> 2

(* Exhaustive matches stay clean. *)
let clean_tag = function
  | Prepare _ -> 0
  | Promise _ -> 1
  | Accept _ -> 2
  | Decide _ -> 3
