(* Fixture for the `opxlint --effects` table golden: one function per
   effect-signature class, plus one that unites them all through calls. *)

type cell = { mutable v : int }

let pure_add a b = a + b
let observe (c : cell) = c.v
let mutate (c : cell) n = c.v <- n
let speak () = print_endline "fixture"
let clock () = Sys.time ()

let everything c =
  mutate c (pure_add (observe c) 1);
  speak ();
  int_of_float (clock ())
