(* D2 corpus: Hashtbl iteration order escaping into sends / accumulation. *)

let send ~dst:_ _ = ()

let broadcast (tbl : (int, string) Hashtbl.t) =
  Hashtbl.iter (fun dst m -> send ~dst m) tbl

let collect (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

(* A fold that feeds a sort directly is canonicalized and stays clean. *)
let sorted (tbl : (int, string) Hashtbl.t) =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

(* to_seq is the same unordered iteration in Seq clothing. *)
let ids (tbl : (int, string) Hashtbl.t) = List.of_seq (Hashtbl.to_seq_keys tbl)
let pairs (tbl : (int, string) Hashtbl.t) = Hashtbl.to_seq tbl |> List.of_seq

(* ...and feeding it straight into a sort stays clean. *)
let vals (tbl : (int, string) Hashtbl.t) =
  List.sort String.compare (List.of_seq (Hashtbl.to_seq_values tbl))
