(* D2 corpus: Hashtbl iteration order escaping into sends / accumulation. *)

let send ~dst:_ _ = ()

let broadcast (tbl : (int, string) Hashtbl.t) =
  Hashtbl.iter (fun dst m -> send ~dst m) tbl

let collect (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

(* A fold that feeds a sort directly is canonicalized and stays clean. *)
let sorted (tbl : (int, string) Hashtbl.t) =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
