(* Suppression corpus: every finding here is annotated away. *)

type ballot = { n : int; pid : int }

let newer (a : ballot) (b : ballot) = (a > b) [@lint.allow "D1"]

let collect (tbl : (int, string) Hashtbl.t) =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@lint.allow "D2"])

type msg = Ping of int | Pong of int

let is_ping = function Ping _ -> true | _ [@lint.allow "D4"] -> false

type counter = { mutable count : int }

let[@pure] [@lint.allow "E1"] quiet_bump (c : counter) = c.count <- 0
