(* Unit and property tests for the discrete-event network simulator:
   delivery semantics, FIFO sessions, partitions, crash/recovery, the
   chunked round-robin egress model, and determinism. *)

module Net = Simnet.Net
module Heap = Simnet.Event_heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make ?(n = 3) ?latency ?egress_bw () =
  Net.create ?latency ?egress_bw ~num_nodes:n ()

let collect net dst log =
  Net.set_handler net dst (fun ~src m -> log := (src, m) :: !log)

(* ------------------------- event heap ------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (t, v) -> Heap.push h ~time:t v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (1.0, "a2") ];
  let pop () = snd (Option.get (Heap.pop h)) in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  check "time order with FIFO ties" true ([ p1; p2; p3; p4 ] = [ "a"; "a2"; "b"; "c" ]);
  check "empty" true (Heap.pop h = None)

let test_heap_many () =
  let h = Heap.create () in
  let rand = Random.State.make [| 9 |] in
  for i = 0 to 999 do
    Heap.push h ~time:(Random.State.float rand 100.0) i
  done;
  let last = ref neg_infinity in
  let ok = ref true in
  for _ = 0 to 999 do
    let t, _ = Option.get (Heap.pop h) in
    if t < !last then ok := false;
    last := t
  done;
  check "1000 random pushes pop sorted" true !ok

let test_heap_stats () =
  let h = Heap.create () in
  let s = Heap.stats h in
  check "fresh heap all zero" true
    (s = { Heap.hs_size = 0; hs_high_water = 0; hs_pushes = 0; hs_pops = 0 });
  List.iter (fun t -> Heap.push h ~time:t t) [ 1.0; 2.0; 3.0 ];
  ignore (Heap.pop h);
  let s = Heap.stats h in
  check_int "size after 3 pushes, 1 pop" 2 s.Heap.hs_size;
  check_int "high-water is the peak size" 3 s.Heap.hs_high_water;
  check_int "pushes count every insertion" 3 s.Heap.hs_pushes;
  check_int "pops" 1 s.Heap.hs_pops;
  List.iter (fun t -> Heap.push h ~time:t t) [ 4.0; 5.0 ];
  check_int "high-water advances past the old peak" 4
    (Heap.stats h).Heap.hs_high_water;
  while Heap.pop h <> None do () done;
  let s = Heap.stats h in
  check_int "drained size" 0 s.Heap.hs_size;
  check "pushes = pops when drained" true (s.Heap.hs_pushes = s.Heap.hs_pops)

(* ------------------------- net instrumentation ------------------------- *)

let test_net_instrumentation () =
  let net = make () in
  let log = ref [] in
  collect net 1 log;
  Net.send net ~src:0 ~dst:1 ~size:10 "a";
  Net.send net ~src:0 ~dst:1 ~size:10 "b";
  check_int "two deliveries in flight" 2 (Net.deliver_in_flight net);
  check_int "link queue is the sender's per-link egress buffer" 0
    (Net.link_queue_depth net ~src:0 ~dst:1);
  Net.drain net;
  check_int "in-flight drains to zero" 0 (Net.deliver_in_flight net);
  let hs = Net.heap_stats net in
  check "heap accounting balances" true
    (hs.Net.hs_pushes = hs.Net.hs_pops + hs.Net.hs_size);
  check "dispatch counts name the deliver class" true
    (List.assoc "deliver" (Net.dispatch_counts net) = 2);
  (* With bounded egress bandwidth the per-source queue is visible while
     the link serialises, and the high-water mark remembers it. *)
  let net2 = make ~egress_bw:1.0 () in
  let log2 = ref [] in
  collect net2 1 log2;
  (* The first message starts transmitting immediately (and a sub-chunk
     message is popped from the queue right away); the ones behind a busy
     link stay queued and set the high-water mark. *)
  Net.send net2 ~src:0 ~dst:1 ~size:100 "slow1";
  Net.send net2 ~src:0 ~dst:1 ~size:100 "slow2";
  Net.send net2 ~src:0 ~dst:1 ~size:100 "slow3";
  check_int "messages behind the busy link stay queued" 2
    (Net.egress_queue_depth net2 0);
  Net.drain net2;
  check_int "egress queue drains" 0 (Net.egress_queue_depth net2 0);
  check "egress high-water survives the drain" true
    (Net.egress_queue_high_water net2 0 >= 2);
  (* publish_metrics mirrors the counters into the default registry. *)
  Obs.Metric.Registry.clear Obs.Metric.Registry.default;
  Net.publish_metrics net;
  let gauge n =
    int_of_float
      (Obs.Metric.Gauge.value (Obs.Metric.Registry.gauge Obs.Metric.Registry.default n))
  in
  check_int "published dispatch gauge" 2 (gauge "simnet.dispatch.deliver");
  check_int "published heap pushes" (Net.heap_stats net).Net.hs_pushes
    (gauge "simnet.heap.pushes");
  Obs.Metric.Registry.clear Obs.Metric.Registry.default

(* ------------------------- delivery ------------------------- *)

let test_basic_delivery () =
  let net = make () in
  let log = ref [] in
  collect net 1 log;
  Net.send net ~src:0 ~dst:1 ~size:10 "hello";
  Net.drain net;
  check "delivered" true (!log = [ (0, "hello") ]);
  check_int "messages delivered" 1 (Net.messages_delivered net)

let test_latency_timing () =
  let net = make ~latency:5.0 () in
  let at = ref 0.0 in
  Net.set_handler net 1 (fun ~src:_ _ -> at := Net.now net);
  Net.send net ~src:0 ~dst:1 ~size:1 ();
  Net.drain net;
  check "arrives after one-way latency" true (!at = 5.0)

let test_fifo_per_link () =
  let net = make () in
  let log = ref [] in
  collect net 1 log;
  for i = 0 to 99 do
    Net.send net ~src:0 ~dst:1 ~size:8 i
  done;
  Net.drain net;
  check "FIFO order" true (List.rev_map snd !log = List.init 100 Fun.id)

let test_partition_drops () =
  let net = make () in
  let log = ref [] in
  collect net 1 log;
  Net.set_link net 0 1 false;
  Net.send net ~src:0 ~dst:1 ~size:8 ();
  Net.drain net;
  check "dropped" true (!log = []);
  Net.set_link net 0 1 true;
  Net.send net ~src:0 ~dst:1 ~size:8 ();
  Net.drain net;
  check_int "delivered after heal" 1 (List.length !log)

let test_in_flight_dropped_on_cut () =
  let net = make ~latency:10.0 () in
  let log = ref [] in
  collect net 1 log;
  Net.send net ~src:0 ~dst:1 ~size:8 ();
  Net.schedule net ~delay:5.0 (fun () -> Net.set_link net 0 1 false);
  Net.drain net;
  check "in-flight message lost when the link goes down" true (!log = [])

let test_one_way_cut () =
  let net = make () in
  let fwd = ref [] and back = ref [] in
  collect net 1 fwd;
  collect net 0 back;
  Net.set_link_oneway net ~src:0 ~dst:1 false;
  Net.send net ~src:0 ~dst:1 ~size:8 ();
  Net.send net ~src:1 ~dst:0 ~size:8 ();
  Net.drain net;
  check "forward dropped" true (!fwd = []);
  check_int "reverse delivered" 1 (List.length !back)

let test_session_reset_on_heal () =
  let net = make () in
  let resets = ref [] in
  Net.set_session_handler net 0 (fun ~peer -> resets := (0, peer) :: !resets);
  Net.set_session_handler net 1 (fun ~peer -> resets := (1, peer) :: !resets);
  Net.set_link net 0 1 false;
  Net.drain net;
  check "no reset on cut" true (!resets = []);
  Net.set_link net 0 1 true;
  Net.drain net;
  check "both endpoints notified on reconnection" true
    (List.sort compare !resets = [ (0, 1); (1, 0) ])

let test_session_invalidates_old_messages () =
  let net = make ~latency:10.0 () in
  let log = ref [] in
  collect net 1 log;
  Net.send net ~src:0 ~dst:1 ~size:8 "old";
  (* Cut and restore while the message is in flight: the session bump must
     invalidate it even though the link is up again at delivery time. *)
  Net.schedule net ~delay:2.0 (fun () -> Net.set_link net 0 1 false);
  Net.schedule net ~delay:4.0 (fun () -> Net.set_link net 0 1 true);
  Net.drain net;
  check "message of the old session dropped" true (!log = [])

let test_crash_and_recover () =
  let net = make () in
  let log = ref [] in
  collect net 1 log;
  Net.crash net 1;
  Net.send net ~src:0 ~dst:1 ~size:8 ();
  Net.drain net;
  check "no delivery to crashed node" true (!log = []);
  check "is_up reflects crash" true (not (Net.is_up net 1));
  Net.recover net 1;
  collect net 1 log;
  Net.send net ~src:0 ~dst:1 ~size:8 ();
  Net.drain net;
  check_int "delivered after recovery" 1 (List.length !log)

(* ------------------------- egress model ------------------------- *)

let test_egress_serialisation () =
  (* 1000 bytes/ms: a 10_000-byte message takes 10 ms + latency. *)
  let net = make ~latency:1.0 ~egress_bw:1000.0 () in
  let at = ref 0.0 in
  Net.set_handler net 1 (fun ~src:_ _ -> at := Net.now net);
  Net.send net ~src:0 ~dst:1 ~size:10_000 ();
  Net.drain net;
  check "delivery = tx time + latency" true (abs_float (!at -. 11.0) < 0.01)

let test_egress_no_starvation () =
  (* A huge transfer to node 1 must not starve a small message to node 2:
     round-robin interleaving bounds its delay to ~one chunk. *)
  let net = make ~latency:0.0 ~egress_bw:1000.0 () in
  let small_at = ref infinity in
  Net.set_handler net 2 (fun ~src:_ _ -> small_at := Net.now net);
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 ~size:1_000_000 ();
  Net.send net ~src:0 ~dst:2 ~size:100 ();
  Net.drain net;
  check "small message interleaves with the bulk transfer" true
    (!small_at < 20.0)

let test_egress_shares_bandwidth () =
  (* Two equal transfers to different destinations finish at about the same
     time, at half rate each. *)
  let net = make ~latency:0.0 ~egress_bw:1000.0 () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.set_handler net 1 (fun ~src:_ _ -> t1 := Net.now net);
  Net.set_handler net 2 (fun ~src:_ _ -> t2 := Net.now net);
  Net.send net ~src:0 ~dst:1 ~size:50_000 ();
  Net.send net ~src:0 ~dst:2 ~size:50_000 ();
  Net.drain net;
  check "both finish near 100ms" true
    (abs_float (!t1 -. 100.0) < 10.0 && abs_float (!t2 -. 100.0) < 10.0)

let test_bytes_accounted_at_transmission () =
  let net = make ~latency:0.0 ~egress_bw:1000.0 () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 ~size:10_000 ();
  Net.run_until net 5.0;
  let sent_half = Net.bytes_sent net 0 in
  Net.drain net;
  (* Chunks are accounted when they start transmitting, so the reading can
     lead by up to one chunk (4 KiB). *)
  check "about half transmitted at half time" true
    (sent_half >= 4_000 && sent_half <= 9_000);
  check_int "all bytes accounted at the end" 10_000 (Net.bytes_sent net 0)

let test_crash_clears_egress () =
  let net = make ~latency:0.0 ~egress_bw:1000.0 () in
  let log = ref [] in
  collect net 1 log;
  Net.send net ~src:0 ~dst:1 ~size:100_000 ();
  Net.schedule net ~delay:10.0 (fun () -> Net.crash net 0);
  Net.drain net;
  check "transfer aborted by sender crash" true (!log = [])

(* ------------------------- determinism ------------------------- *)

let run_deterministic seed =
  let net = Net.create ~seed ~num_nodes:4 () in
  let trace = ref [] in
  for dst = 0 to 3 do
    Net.set_handler net dst (fun ~src m ->
        trace := (Net.now net, src, dst, m) :: !trace;
        (* Random fan-out keeps the RNG in the loop. *)
        if m > 0 then
          Net.send net ~src:dst
            ~dst:(Random.State.int (Net.rng net) 4 |> fun d ->
                  if d = dst then (d + 1) mod 4 else d)
            ~size:8 (m - 1))
  done;
  Net.send net ~src:0 ~dst:1 ~size:8 32;
  Net.drain net;
  !trace

let test_determinism () =
  check "same seed, same trace" true
    (run_deterministic 5 = run_deterministic 5);
  check "different seed, different trace" true
    (run_deterministic 5 <> run_deterministic 6)

(* ------------------------- properties ------------------------- *)

(* FIFO per link holds under random sizes and random link flapping. *)
let prop_fifo_under_flapping =
  QCheck.Test.make ~name:"per-link delivery order is FIFO under flapping"
    ~count:50
    QCheck.(list (pair (int_bound 2000) bool))
    (fun script ->
      let net = Net.create ~latency:0.3 ~egress_bw:500.0 ~num_nodes:2 () in
      let received = ref [] in
      Net.set_handler net 1 (fun ~src:_ m -> received := m :: !received);
      List.iteri
        (fun i (size, flap) ->
          Net.schedule net ~delay:(float_of_int i)
            (fun () ->
              if flap then Net.set_link net 0 1 (not (Net.link_up net 0 1));
              Net.send net ~src:0 ~dst:1 ~size i))
        script;
      Net.drain net;
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | [ _ ] | [] -> true
      in
      increasing (List.rev !received))

let () =
  Alcotest.run "simnet"
    [
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "many" `Quick test_heap_many;
          Alcotest.test_case "stats" `Quick test_heap_stats;
          Alcotest.test_case "net instrumentation" `Quick
            test_net_instrumentation;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_basic_delivery;
          Alcotest.test_case "latency" `Quick test_latency_timing;
          Alcotest.test_case "fifo" `Quick test_fifo_per_link;
          Alcotest.test_case "partition drops" `Quick test_partition_drops;
          Alcotest.test_case "in-flight dropped on cut" `Quick
            test_in_flight_dropped_on_cut;
          Alcotest.test_case "one-way cut" `Quick test_one_way_cut;
          Alcotest.test_case "session reset on heal" `Quick
            test_session_reset_on_heal;
          Alcotest.test_case "session invalidates in-flight" `Quick
            test_session_invalidates_old_messages;
          Alcotest.test_case "crash and recover" `Quick test_crash_and_recover;
        ] );
      ( "egress",
        [
          Alcotest.test_case "serialisation" `Quick test_egress_serialisation;
          Alcotest.test_case "no starvation" `Quick test_egress_no_starvation;
          Alcotest.test_case "bandwidth sharing" `Quick
            test_egress_shares_bandwidth;
          Alcotest.test_case "bytes at transmission" `Quick
            test_bytes_accounted_at_transmission;
          Alcotest.test_case "crash clears egress" `Quick
            test_crash_clears_egress;
        ] );
      ( "determinism",
        [ Alcotest.test_case "trace equality" `Quick test_determinism ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_fifo_under_flapping ] );
    ]
